// Package wots implements the WOTS+ one-time signature scheme as used
// inside SPHINCS+ (chain generation, signing, and public-key recovery from
// a signature).
//
// Every chain is an independent sequence of F evaluations — the property
// HERO-Sign exploits for chain-level GPU parallelism. The functions here
// therefore expose per-chain entry points (ChainLengths, GenChain) in
// addition to whole-signature operations, so the simulated kernels can
// schedule chains onto threads exactly as the CUDA implementation does.
//
// The whole-key operations (PKGen, Sign, PKFromSig) are lane-batched: all
// WOTSLen chains advance step-synchronously, one F per chain per multi-lane
// pass (hashes.FLanes), mirroring a warp advancing independent chains in
// lockstep. Outputs are byte-identical to the per-chain path, and hash
// counters are charged per logical call, so modeled metrics do not change.
package wots

import (
	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// ChainLengthsInto computes the base-w representation of msg (N bytes)
// followed by the checksum digits — the start positions of all WOTSLen
// chains — into dst (length >= WOTSLen) without allocating, and returns
// dst[:WOTSLen]. Entries are in [0, w).
func ChainLengthsInto(p *params.Params, dst []uint32, msg []byte) []uint32 {
	dst = dst[:p.WOTSLen]
	baseW(p, dst[:p.WOTSLen1], msg)

	// Checksum over the message digits.
	var csum uint32
	for _, d := range dst[:p.WOTSLen1] {
		csum += uint32(p.W-1) - d
	}
	// Left-shift so the checksum occupies the top bits of its byte string.
	csum <<= uint((8 - (p.WOTSLen2*p.LogW)%8) % 8)
	var csumBytes [8]byte // WOTSLen2*LogW is at most 32 bits for all sets
	nb := (p.WOTSLen2*p.LogW + 7) / 8
	for i := nb - 1; i >= 0; i-- {
		csumBytes[i] = byte(csum)
		csum >>= 8
	}
	baseW(p, dst[p.WOTSLen1:], csumBytes[:nb])
	return dst
}

// ChainLengths is ChainLengthsInto with a freshly allocated destination.
func ChainLengths(p *params.Params, msg []byte) []uint32 {
	return ChainLengthsInto(p, make([]uint32, p.WOTSLen), msg)
}

// baseW splits msg into out digits of LogW bits, most-significant first.
func baseW(p *params.Params, out []uint32, msg []byte) {
	in := 0
	bits := 0
	var total byte
	for i := range out {
		if bits == 0 {
			total = msg[in]
			in++
			bits = 8
		}
		bits -= p.LogW
		out[i] = uint32(total>>uint(bits)) & uint32(p.W-1)
	}
}

// GenChain walks the hash chain: out = F^steps(in) starting at position
// start. adrs must have its chain word already set; the hash word is
// updated in place. in and out are N-byte values and may alias.
func GenChain(ctx *hashes.Ctx, out, in []byte, start, steps uint32, adrs *address.Address) {
	p := ctx.P
	copy(out[:p.N], in[:p.N])
	for i := start; i < start+steps && i < uint32(p.W); i++ {
		adrs.SetHash(i)
		ctx.F(out, out, adrs)
	}
}

// ChainSK derives the chain-i secret value into out using the WOTS PRF
// address type.
func ChainSK(ctx *hashes.Ctx, out []byte, chain uint32, adrs *address.Address) {
	var skAdrs address.Address
	skAdrs.CopyKeyPair(adrs)
	skAdrs.SetType(address.WOTSPRF)
	skAdrs.SetKeyPair(adrs.KeyPair())
	skAdrs.SetChain(chain)
	ctx.PRF(out, &skAdrs)
}

// chainSKBatch derives the secret values of all WOTSLen chains into
// buf (WOTSLen*N bytes), sha2.Lanes at a time.
func chainSKBatch(ctx *hashes.Ctx, buf []byte, adrs *address.Address) {
	p := ctx.P
	var outs [sha2.Lanes][]byte
	var lanes [sha2.Lanes]address.Address
	for base := 0; base < p.WOTSLen; base += sha2.Lanes {
		count := p.WOTSLen - base
		if count > sha2.Lanes {
			count = sha2.Lanes
		}
		for j := 0; j < count; j++ {
			chain := base + j
			outs[j] = buf[chain*p.N : (chain+1)*p.N]
			lanes[j].CopyKeyPair(adrs)
			lanes[j].SetType(address.WOTSPRF)
			lanes[j].SetKeyPair(adrs.KeyPair())
			lanes[j].SetChain(uint32(chain))
		}
		ctx.PRFLanes(count, &outs, &lanes)
	}
}

// stepChainsBatch advances every chain i whose [starts[i], ends[i]) range
// contains the current step, step-synchronously: per hash position s, all
// live chains take one F in multi-lane passes. buf holds the WOTSLen chain
// values back to back (N bytes each) and is updated in place.
func stepChainsBatch(ctx *hashes.Ctx, buf []byte, starts, ends []uint32, adrs *address.Address) {
	p := ctx.P
	var outs [sha2.Lanes][]byte
	var lanes [sha2.Lanes]address.Address
	maxEnd := uint32(0)
	for _, e := range ends {
		if e > maxEnd {
			maxEnd = e
		}
	}
	for s := uint32(0); s < maxEnd; s++ {
		count := 0
		for i := 0; i < p.WOTSLen; i++ {
			if s < starts[i] || s >= ends[i] {
				continue
			}
			seg := buf[i*p.N : (i+1)*p.N]
			outs[count] = seg
			lanes[count].CopyKeyPair(adrs)
			lanes[count].SetType(address.WOTSHash)
			lanes[count].SetKeyPair(adrs.KeyPair())
			lanes[count].SetChain(uint32(i))
			lanes[count].SetHash(s)
			count++
			if count == sha2.Lanes {
				ctx.FLanes(count, &outs, &outs, &lanes)
				count = 0
			}
		}
		if count > 0 {
			ctx.FLanes(count, &outs, &outs, &lanes)
		}
	}
}

// PKGen computes the compressed WOTS+ public key (N bytes) for the key pair
// identified by adrs (type WOTSHash with key pair set). All WOTSLen chains
// run to their end step-synchronously before T_len compresses them.
func PKGen(ctx *hashes.Ctx, out []byte, adrs *address.Address) {
	p := ctx.P
	pk := ctx.WOTSPKBuf()
	chainSKBatch(ctx, pk, adrs)
	var zeros, ends [wotsMaxLen]uint32
	for i := 0; i < p.WOTSLen; i++ {
		ends[i] = uint32(p.W - 1)
	}
	stepChainsBatch(ctx, pk, zeros[:p.WOTSLen], ends[:p.WOTSLen], adrs)

	var pkAdrs address.Address
	pkAdrs.CopyKeyPair(adrs)
	pkAdrs.SetType(address.WOTSPK)
	pkAdrs.SetKeyPair(adrs.KeyPair())
	ctx.Thash(out, pk, &pkAdrs)
}

// wotsMaxLen bounds WOTSLen across all supported parameter sets (w=16 at
// n=32 gives 64+3 = 67; w=256 sets are shorter).
const wotsMaxLen = 80

// Sign produces the WOTS+ signature of msg (N bytes) into sig
// (WOTSLen*N bytes) for the key pair identified by adrs. Chains advance
// step-synchronously to their per-digit lengths.
func Sign(ctx *hashes.Ctx, sig, msg []byte, adrs *address.Address) {
	p := ctx.P
	lengths := ChainLengthsInto(p, ctx.WOTSLengthsBuf(), msg)
	chainSKBatch(ctx, sig[:p.WOTSBytes], adrs)
	var zeros [wotsMaxLen]uint32
	stepChainsBatch(ctx, sig, zeros[:p.WOTSLen], lengths, adrs)
}

// PKFromSigBatch recovers b compressed public keys at once, one per
// signature, scheduling the chain work of all signatures step-synchronously:
// per hash position s every live chain of every signature takes one F, so
// lane passes stay nearly full even where a single signature's live-chain
// count dips (the long tail of high-digit chains). pks receives b N-byte
// public keys back to back. msgs[j] is the N-byte signed value of signature
// j; pks may overlap the msgs storage — every message is consumed before the
// first public-key byte is written. adrs[j] must carry signature j's
// key-pair addressing (type WOTSHash). Outputs are byte-identical to b
// scalar PKFromSig calls.
func PKFromSigBatch(ctx *hashes.Ctx, b int, pks []byte, sigs, msgs *[sha2.Lanes][]byte, adrs *[sha2.Lanes]address.Address) {
	p := ctx.P
	lengths := ctx.WOTSLengthsBatchBuf(b)
	buf := ctx.WOTSPKBatchBuf(b)
	for j := 0; j < b; j++ {
		ChainLengthsInto(p, lengths[j*p.WOTSLen:(j+1)*p.WOTSLen], msgs[j])
		copy(buf[j*p.WOTSBytes:(j+1)*p.WOTSBytes], sigs[j][:p.WOTSBytes])
	}

	// Step-synchronous advance pooled across signatures: within one hash
	// position the chains of different signatures are independent, so a
	// lane group fills across signature boundaries; only the step boundary
	// forces a flush (position s+1 of a chain needs its position-s value).
	// Per-signature template addresses are built once; the inner loop then
	// pays one struct copy plus the chain/hash words per lane instead of
	// re-deriving the key-pair prefix and re-zeroing the type words.
	var tpl [sha2.Lanes]address.Address
	for j := 0; j < b; j++ {
		tpl[j].CopyKeyPair(&adrs[j])
		tpl[j].SetType(address.WOTSHash)
		tpl[j].SetKeyPair(adrs[j].KeyPair())
	}

	end := uint32(p.W - 1)
	var outs [sha2.Lanes][]byte
	var lanes [sha2.Lanes]address.Address
	for s := uint32(0); s < end; s++ {
		count := 0
		for j := 0; j < b; j++ {
			base := j * p.WOTSLen
			for i := 0; i < p.WOTSLen; i++ {
				if s < lengths[base+i] {
					continue
				}
				outs[count] = buf[(base+i)*p.N : (base+i+1)*p.N]
				lanes[count] = tpl[j]
				lanes[count].SetChain(uint32(i))
				lanes[count].SetHash(s)
				count++
				if count == sha2.Lanes {
					ctx.FLanes(count, &outs, &outs, &lanes)
					count = 0
				}
			}
		}
		if count > 0 {
			ctx.FLanes(count, &outs, &outs, &lanes)
		}
	}

	var pkAdrs address.Address
	for j := 0; j < b; j++ {
		pkAdrs.CopyKeyPair(&adrs[j])
		pkAdrs.SetType(address.WOTSPK)
		pkAdrs.SetKeyPair(adrs[j].KeyPair())
		ctx.Thash(pks[j*p.N:(j+1)*p.N], buf[j*p.WOTSBytes:(j+1)*p.WOTSBytes], &pkAdrs)
	}
}

// PKFromSig recovers the compressed public key from a signature and the
// signed message; verification succeeds when the result feeds a Merkle path
// that reproduces the tree root.
func PKFromSig(ctx *hashes.Ctx, out, sig, msg []byte, adrs *address.Address) {
	p := ctx.P
	lengths := ChainLengthsInto(p, ctx.WOTSLengthsBuf(), msg)
	pk := ctx.WOTSPKBuf()
	copy(pk, sig[:p.WOTSBytes])
	var ends [wotsMaxLen]uint32
	for i := 0; i < p.WOTSLen; i++ {
		ends[i] = uint32(p.W - 1)
	}
	stepChainsBatch(ctx, pk, lengths, ends[:p.WOTSLen], adrs)

	var pkAdrs address.Address
	pkAdrs.CopyKeyPair(adrs)
	pkAdrs.SetType(address.WOTSPK)
	pkAdrs.SetKeyPair(adrs.KeyPair())
	ctx.Thash(out, pk, &pkAdrs)
}
