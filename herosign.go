// Package herosign is a Go reproduction of HERO-Sign (HPCA 2026):
// hierarchical tuning and compiler-time GPU optimizations for SPHINCS+
// signature generation.
//
// The package offers three layers:
//
//  1. A complete, pure-Go SPHINCS+ implementation (SHA-256, simple
//     construction; the 128f/192f/256f sets the paper evaluates plus the -s
//     sets): GenerateKey, Sign, Verify.
//  2. A deterministic GPU performance-model simulator with a catalog of the
//     paper's six NVIDIA devices, over which both HERO-Sign's optimized
//     kernels and the TCAS-SPHINCSp baseline execute functionally.
//  3. The HERO-Sign engine itself — FORS Fusion with the Auto Tree Tuning
//     search, Relax-FORS, adaptive PTX/native branch selection, hybrid
//     memory placement, generalized bank-conflict padding and task-graph
//     batch execution — exposed through Accelerator.
//
// Signatures produced by any Accelerator configuration are byte-identical
// to Sign's output and verify with Verify.
//
// # Serving layer quickstart
//
// On top of the batch engine, NewService builds a concurrent
// request-coalescing signing service (package herosign/service): individual
// Submit calls are coalesced into GPU-sized batches — flushed on a size
// threshold or a deadline, whichever fires first — and a shard router
// spreads the batches over pluggable backends (simulated GPU devices, the
// real-CPU lane engine via NewCPURefBackend, or custom Backend
// implementations) with weighted least-outstanding-work dispatch. Each
// shard owns its own keypair; bounded admission control (WithQueueLimit)
// sheds overload as ErrOverloaded instead of growing queues without bound.
// An HTTP/JSON front end (Service.Handler) exposes /v1/sign,
// /v1/sign/batch, /v1/verify, /v1/keygen, /v1/keys and /v1/stats, mapping
// overload to 429 with Retry-After.
//
//	svc, err := herosign.NewService(
//		herosign.WithServiceParams(herosign.SPHINCSPlus128f),
//		herosign.WithServiceDevices(gpuA, gpuB),       // one worker per device
//		herosign.WithBackend(herosign.NewCPURefBackend(8)), // mix in real CPU
//		herosign.WithShards(2),                        // two key domains
//		herosign.WithQueueLimit(herosign.AutoQueueLimit),
//	)
//	if err != nil { ... }
//	defer svc.Close()
//
//	sig, err := svc.Sign(ctx, msg)            // coalesced under the hood
//	ok, err := svc.Verify(ctx, msg, sig)      // ok == true
//	http.ListenAndServe(":8080", svc.Handler())
//
// Fleets compose across machines: package herosign/service/remote wraps a
// whole remote herosign-serve instance as a Backend (health-weighted
// routing, outlier ejection, hedged retries), so a front-end service can
// proxy batches to leaf nodes over HTTP — see README "Multi-host
// deployment".
//
// Per-backend throughput and dispatch weights, the batch-size histogram,
// per-shard queue depths and shed/rejected counters are available from
// Service.Stats (and /v1/stats). See cmd/herosign-serve for a ready-made
// server and examples/service-demo for an open-loop mixed-backend workload
// with an overload scenario.
package herosign

import (
	"time"

	"herosign/internal/baseline"
	"herosign/internal/core"
	"herosign/internal/core/tuner"
	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
	"herosign/service"
)

// Params identifies a SPHINCS+ parameter set.
type Params = params.Params

// Standard parameter sets. The -f sets are the paper's evaluation targets.
var (
	SPHINCSPlus128s = params.SPHINCSPlus128s
	SPHINCSPlus128f = params.SPHINCSPlus128f
	SPHINCSPlus192s = params.SPHINCSPlus192s
	SPHINCSPlus192f = params.SPHINCSPlus192f
	SPHINCSPlus256s = params.SPHINCSPlus256s
	SPHINCSPlus256f = params.SPHINCSPlus256f
)

// ParamsByName resolves a parameter set from names like "SPHINCS+-128f" or
// "128f".
func ParamsByName(name string) (*Params, error) { return params.ByName(name) }

// AllParams lists every built-in parameter set.
func AllParams() []*Params { return params.AllSets() }

// PublicKey is a SPHINCS+ public key.
type PublicKey = spx.PublicKey

// PrivateKey is a SPHINCS+ private key.
type PrivateKey = spx.PrivateKey

// GenerateKey creates a key pair from crypto/rand.
func GenerateKey(p *Params) (*PrivateKey, error) { return spx.GenerateKey(p) }

// KeyFromSeeds derives a key pair deterministically from
// (SK.seed, SK.prf, PK.seed), each p.N bytes.
func KeyFromSeeds(p *Params, skSeed, skPRF, pkSeed []byte) (*PrivateKey, error) {
	return spx.KeyFromSeeds(p, skSeed, skPRF, pkSeed)
}

// ParsePublicKey deserializes a public key (PK.seed || PK.root).
func ParsePublicKey(p *Params, b []byte) (*PublicKey, error) { return spx.ParsePublicKey(p, b) }

// ParsePrivateKey deserializes a private key
// (SK.seed || SK.prf || PK.seed || PK.root).
func ParsePrivateKey(p *Params, b []byte) (*PrivateKey, error) { return spx.ParsePrivateKey(p, b) }

// Sign produces a SPHINCS+ signature with the CPU reference implementation.
func Sign(sk *PrivateKey, msg []byte) ([]byte, error) { return spx.Sign(sk, msg, nil) }

// Verify checks a SPHINCS+ signature. It returns nil for a valid signature.
func Verify(pk *PublicKey, msg, sig []byte) error { return spx.Verify(pk, msg, sig) }

// Verifier is a reusable verification context for one public key: the
// hashing arenas are warmed at construction, after which Verify and
// VerifyBatch run with zero steady-state allocations, and VerifyBatch
// advances up to eight signatures' hash chains per multi-lane pass. A
// Verifier is not safe for concurrent use; pool one per worker.
type Verifier = spx.Verifier

// NewVerifier returns a reusable Verifier bound to pk.
func NewVerifier(pk *PublicKey) *Verifier { return spx.NewVerifier(pk) }

// GPU describes one simulated device model.
type GPU = device.Device

// GPUs lists the simulated device catalog (paper Table VII).
func GPUs() []*GPU { return device.All() }

// GPUByName resolves a device by product name ("RTX 4090") or architecture
// ("Ada").
func GPUByName(name string) (*GPU, error) { return device.ByName(name) }

// Features selects the HERO-Sign optimizations an Accelerator applies.
type Features = core.Features

// HeroFeatures returns the full HERO-Sign optimization stack.
func HeroFeatures() Features { return core.AllFeatures() }

// BaselineFeatures returns the TCAS-SPHINCSp baseline configuration.
func BaselineFeatures() Features { return core.Baseline() }

// BatchResult reports signatures and modeled performance for one batch.
type BatchResult = core.BatchResult

// TuningResult is the output of the Auto Tree Tuning search.
type TuningResult = tuner.Result

// Tune runs the offline Tree Tuning search (paper Algorithm 1) for a
// parameter set on a device.
func Tune(p *Params, d *GPU) (*TuningResult, error) {
	return tuner.Tune(p, d, tuner.Options{})
}

// Option configures an Accelerator.
type Option func(*core.Config)

// WithFeatures overrides the optimization set (default: HeroFeatures).
func WithFeatures(f Features) Option {
	return func(c *core.Config) { c.Features = f }
}

// WithSubBatch sets the launch-group granularity for stream/graph
// scheduling (default 64, the paper's preferred batch size).
func WithSubBatch(n int) Option {
	return func(c *core.Config) { c.SubBatch = n }
}

// WithStreams sets the number of concurrent streams (default 4).
func WithStreams(n int) Option {
	return func(c *core.Config) { c.Streams = n }
}

// Accelerator signs message batches on a simulated GPU.
type Accelerator struct {
	signer *core.Signer
}

// NewAccelerator builds a batch signer for the parameter set on the device.
// By default it applies the full HERO-Sign optimization stack, running the
// Tree Tuning search during construction.
func NewAccelerator(p *Params, d *GPU, opts ...Option) (*Accelerator, error) {
	cfg := core.Config{Params: p, Device: d, Features: core.AllFeatures()}
	for _, o := range opts {
		o(&cfg)
	}
	s, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Accelerator{signer: s}, nil
}

// SignBatch signs every message, returning signatures (byte-identical to
// Sign) and modeled performance.
func (a *Accelerator) SignBatch(sk *PrivateKey, msgs [][]byte) (*BatchResult, error) {
	return a.signer.SignBatch(sk, msgs)
}

// MeasureBatch runs a sampled batch of the given size for performance
// measurement only (no signatures returned).
func (a *Accelerator) MeasureBatch(sk *PrivateKey, batch int) (*BatchResult, error) {
	return a.signer.MeasureBatch(sk, batch, 4)
}

// VerifyResult reports a batch verification run.
type VerifyResult = core.VerifyResult

// VerifyBatch checks a batch of signatures on the simulated GPU (one block
// per message, FORS-tree- and chain-level parallel). The verdicts agree
// exactly with Verify.
func (a *Accelerator) VerifyBatch(pk *PublicKey, msgs, sigs [][]byte) (*VerifyResult, error) {
	return a.signer.VerifyBatch(pk, msgs, sigs)
}

// SeedTriple is the (SK.seed, SK.prf, PK.seed) input to batch key
// generation; each component is Params.N bytes.
type SeedTriple = core.SeedTriple

// KeyGenResult reports a batch key-generation run.
type KeyGenResult = core.KeyGenResult

// KeyGenBatch derives key pairs on the simulated GPU (one block per key,
// leaf-level parallel treehash). Keys are byte-identical to KeyFromSeeds.
func (a *Accelerator) KeyGenBatch(seeds []SeedTriple) (*KeyGenResult, error) {
	return a.signer.KeyGenBatch(seeds)
}

// Tuning returns the Tree Tuning result, or nil when fusion is disabled.
func (a *Accelerator) Tuning() *TuningResult { return a.signer.Tuning() }

// Params returns the parameter set the accelerator was built for.
func (a *Accelerator) Params() *Params { return a.signer.Params() }

// Device returns the simulated device the accelerator targets.
func (a *Accelerator) Device() *GPU { return a.signer.Device() }

// Service is the concurrent request-coalescing signing service (package
// herosign/service): per-shard request coalescers over a shard router that
// spreads batches across pluggable backends with weighted
// least-outstanding-work dispatch, bounded admission control, and an
// HTTP/JSON front end.
type Service = service.Service

// ServiceOption configures NewService.
type ServiceOption = service.Option

// Backend is one executor in the service fleet: a simulated GPU device, the
// real-CPU lane engine, or a whole remote herosign-serve instance (package
// herosign/service/remote); a real-CUDA worker registers here instead of
// rewriting the scheduler.
type Backend = service.Backend

// ShedPolicy selects what an over-limit shard does with overflow load.
type ShedPolicy = service.ShedPolicy

// Shed policies for WithShedPolicy.
const (
	RejectNewest       = service.RejectNewest
	DropOldestDeadline = service.DropOldestDeadline
)

// AutoQueueLimit derives admission caps from backend capacity hints.
const AutoQueueLimit = service.AutoQueueLimit

// ErrOverloaded is returned (wrapped) by Submit calls the admission
// controller rejects; the HTTP front end maps it to 429 with Retry-After.
var ErrOverloaded = service.ErrOverloaded

// NewDeviceBackend wraps a simulated GPU device as a service Backend.
func NewDeviceBackend(d *GPU) Backend { return service.NewDeviceBackend(d) }

// NewCPURefBackend wraps the real-CPU lane-engine signer as a service
// Backend with the given worker-goroutine count (<= 0 selects GOMAXPROCS).
func NewCPURefBackend(threads int) Backend { return service.NewCPURefBackend(threads) }

// NewCPURefBackendMemo is NewCPURefBackend with per-key hypertree
// memoization: all workers share a cache of XMSS subtree state bounded by
// memoBytes, and with warm set the pinned top layers are prebuilt during
// backend warm-up (before the shard serves) instead of on the request
// path. Cache counters surface under "memo" in Service.Stats and
// /v1/stats. Signatures are byte-identical with and without the cache.
func NewCPURefBackendMemo(threads int, memoBytes int64, warm bool) Backend {
	return service.NewCPURefBackendMemo(threads, memoBytes, warm)
}

// Service options, wrapped so callers need only this package. The
// WithService* names avoid clashing with the Accelerator options.

// WithServiceParams selects the parameter set (default SPHINCS+-128f).
func WithServiceParams(p *Params) ServiceOption { return service.WithParams(p) }

// WithServiceKey installs the signing key (default: freshly generated).
func WithServiceKey(sk *PrivateKey) ServiceOption { return service.WithKey(sk) }

// WithServiceDevices sets the fleet, one worker per device entry.
func WithServiceDevices(devs ...*GPU) ServiceOption { return service.WithDevices(devs...) }

// WithServiceMaxBatch sets the size-triggered flush threshold (default:
// the engine SubBatch, 64).
func WithServiceMaxBatch(n int) ServiceOption { return service.WithMaxBatch(n) }

// WithServiceFlushDeadline bounds a lone request's coalescing wait
// (default 2ms).
func WithServiceFlushDeadline(d time.Duration) ServiceOption { return service.WithFlushDeadline(d) }

// WithServiceFeatures overrides the engine optimization set.
func WithServiceFeatures(f Features) ServiceOption { return service.WithFeatures(f) }

// WithServiceSubBatch sets the engine launch-group granularity.
func WithServiceSubBatch(n int) ServiceOption { return service.WithSubBatch(n) }

// WithServiceStreams sets the engine stream count.
func WithServiceStreams(n int) ServiceOption { return service.WithStreams(n) }

// WithBackend registers pre-built backends (NewDeviceBackend,
// NewCPURefBackend, or custom) alongside any WithServiceDevices workers.
func WithBackend(bs ...Backend) ServiceOption { return service.WithBackends(bs...) }

// WithShards splits the service into n key domains; backends distribute
// round-robin across them and each shard signs under its own derived key.
func WithShards(n int) ServiceOption { return service.WithShards(n) }

// WithQueueLimit bounds each shard's admitted-but-unresolved messages
// (AutoQueueLimit derives the bound from backend capacities; 0 means
// unbounded). Past the bound, submits fail with ErrOverloaded and the HTTP
// front end answers 429 with Retry-After.
func WithQueueLimit(n int) ServiceOption { return service.WithQueueLimit(n) }

// WithGlobalQueueLimit bounds the whole service's admitted-but-unresolved
// messages the same way.
func WithGlobalQueueLimit(n int) ServiceOption { return service.WithGlobalQueueLimit(n) }

// WithShedPolicy selects the overload behavior: RejectNewest (default) or
// DropOldestDeadline.
func WithShedPolicy(p ShedPolicy) ServiceOption { return service.WithShedPolicy(p) }

// WithDrainDeadline bounds how long Service.Close waits for queued batches
// before abandoning them (zero waits for a full drain).
func WithDrainDeadline(d time.Duration) ServiceOption { return service.WithDrainDeadline(d) }

// WithTenantRate enables per-tenant fair queuing: each API key's admitted
// messages draw from its own token bucket refilling at rate messages/s, so
// one hot tenant is rate-limited (429) before it can starve a shard. Zero
// (the default) disables rate limiting; per-tenant counters in /v1/stats
// stay on either way.
func WithTenantRate(rate float64) ServiceOption { return service.WithTenantRate(rate) }

// WithTenantBurst caps each tenant's token bucket (default: one second of
// the tenant rate, floored at 8).
func WithTenantBurst(n int) ServiceOption { return service.WithTenantBurst(n) }

// NewService builds the request-coalescing signing service. See the
// package documentation's serving-layer quickstart.
func NewService(opts ...ServiceOption) (*Service, error) { return service.New(opts...) }

// NewBaseline builds a TCAS-SPHINCSp-style baseline signer for comparisons.
func NewBaseline(p *Params, d *GPU) (*Accelerator, error) {
	b, err := baseline.New(p, d)
	if err != nil {
		return nil, err
	}
	return &Accelerator{signer: b.Core()}, nil
}
