// Command bench-compare diffs two herosign-bench -json reports so the perf
// trajectory across PRs stays visible: it aligns experiments by id and rows
// by their first column, then prints numeric cell deltas and per-experiment
// harness wall-time changes.
//
// Usage:
//
//	bench-compare -old BENCH_2026-07-29.json -new BENCH_latest.json
//	bench-compare -old BENCH_2026-07-29.json -new BENCH_latest.json -all
//
// Exit status is 0 whether or not values changed; the tool reports, it does
// not gate. (Modeled metrics are deterministic; wall-clock tables and
// wall_ms vary run to run.)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type report struct {
	Device      string        `json:"device"`
	Batch       int           `json:"batch"`
	Sample      int           `json:"sample"`
	GeneratedAt string        `json:"generated_at"`
	Experiments []*experiment `json:"experiments"`
}

type experiment struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	WallMS int64      `json:"wall_ms"`
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// num parses a numeric cell, tolerating the "1.23x" speedup suffix.
func num(s string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "x"), 64)
	return v, err == nil
}

func main() {
	oldPath := flag.String("old", "", "baseline report (committed BENCH_*.json)")
	newPath := flag.String("new", "BENCH_latest.json", "candidate report")
	all := flag.Bool("all", false, "print unchanged cells too")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "bench-compare: -old and -new are required")
		os.Exit(2)
	}

	oldR, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	newR, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("old: %s (%s, batch=%d, sample=%d)\n", *oldPath, oldR.GeneratedAt, oldR.Batch, oldR.Sample)
	fmt.Printf("new: %s (%s, batch=%d, sample=%d)\n\n", *newPath, newR.GeneratedAt, newR.Batch, newR.Sample)
	if oldR.Device != newR.Device || oldR.Batch != newR.Batch || oldR.Sample != newR.Sample {
		fmt.Printf("WARNING: configurations differ (device %q/batch %d/sample %d vs %q/%d/%d); deltas may not be comparable\n\n",
			oldR.Device, oldR.Batch, oldR.Sample, newR.Device, newR.Batch, newR.Sample)
	}

	oldByID := map[string]*experiment{}
	for _, e := range oldR.Experiments {
		oldByID[e.ID] = e
	}

	var totalOld, totalNew int64
	changedCells := 0
	for _, ne := range newR.Experiments {
		oe, ok := oldByID[ne.ID]
		if !ok {
			fmt.Printf("== %-10s NEW experiment (%s), wall %dms\n", ne.ID, ne.Title, ne.WallMS)
			totalNew += ne.WallMS
			continue
		}
		delete(oldByID, ne.ID)
		totalOld += oe.WallMS
		totalNew += ne.WallMS

		// Rows are keyed by (first column, occurrence index): several tables
		// repeat the leading label across rows (e.g. one row per
		// optimization step per parameter set), so the label alone would
		// collide.
		oldRows := map[string][]string{}
		oldSeen := map[string]int{}
		for _, r := range oe.Rows {
			if len(r) > 0 {
				key := fmt.Sprintf("%s#%d", r[0], oldSeen[r[0]])
				oldSeen[r[0]]++
				oldRows[key] = r
			}
		}
		var lines []string
		newSeen := map[string]int{}
		for _, r := range ne.Rows {
			if len(r) == 0 {
				continue
			}
			key := fmt.Sprintf("%s#%d", r[0], newSeen[r[0]])
			newSeen[r[0]]++
			or, ok := oldRows[key]
			if !ok {
				lines = append(lines, fmt.Sprintf("  + row %q", r[0]))
				continue
			}
			delete(oldRows, key)
			for c := 1; c < len(r) && c < len(or); c++ {
				col := fmt.Sprintf("col %d", c)
				if c < len(ne.Header) {
					col = ne.Header[c]
				}
				nv, nok := num(r[c])
				ov, ook := num(or[c])
				switch {
				case nok && ook && ov != 0:
					pct := 100 * (nv - ov) / ov
					if nv != ov || *all {
						lines = append(lines, fmt.Sprintf("  %-22s %-22s %12s -> %-12s %+7.1f%%",
							r[0], col, or[c], r[c], pct))
						if nv != ov {
							changedCells++
						}
					}
				case r[c] != or[c]:
					lines = append(lines, fmt.Sprintf("  %-22s %-22s %12s -> %s", r[0], col, or[c], r[c]))
					changedCells++
				}
			}
		}
		for key := range oldRows {
			lines = append(lines, fmt.Sprintf("  - row %q removed", key))
			changedCells++
		}
		fmt.Printf("== %-10s wall %dms -> %dms\n", ne.ID, oe.WallMS, ne.WallMS)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	for id := range oldByID {
		fmt.Printf("== %-10s REMOVED in new report\n", id)
	}
	fmt.Printf("\ntotal harness wall: %dms -> %dms; %d changed cells\n", totalOld, totalNew, changedCells)
}
