// Command herosign is a SPHINCS+ key generation, signing and verification
// tool built on the library's public API. Signing can run on the CPU
// reference path or on a simulated GPU with the full HERO-Sign
// optimization stack (the two produce identical signatures).
//
// Usage:
//
//	herosign keygen -set 128f -out keyfile
//	herosign sign   -set 128f -key keyfile -in message -out sigfile [-gpu "RTX 4090"]
//	herosign verify -set 128f -key keyfile.pub -in message -sig sigfile
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"herosign"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	set := fs.String("set", "128f", "parameter set (128s/128f/192s/192f/256s/256f)")
	keyPath := fs.String("key", "", "key file (hex)")
	inPath := fs.String("in", "", "message file")
	outPath := fs.String("out", "", "output file")
	sigPath := fs.String("sig", "", "signature file (hex)")
	gpuName := fs.String("gpu", "", "sign on a simulated GPU (e.g. \"RTX 4090\"); empty = CPU")
	fs.Parse(os.Args[2:])

	p, err := herosign.ParamsByName(*set)
	check(err)

	switch cmd {
	case "keygen":
		sk, err := herosign.GenerateKey(p)
		check(err)
		out := *outPath
		if out == "" {
			out = "herosign.key"
		}
		check(writeHex(out, sk.Bytes(), 0o600))
		check(writeHex(out+".pub", sk.PublicKey.Bytes(), 0o644))
		fmt.Printf("%s: wrote %s (%d bytes) and %s.pub (%d bytes)\n",
			p.Name, out, p.SKBytes, out, p.PKBytes)

	case "sign":
		skBytes := readHex(*keyPath)
		sk, err := herosign.ParsePrivateKey(p, skBytes)
		check(err)
		msg, err := os.ReadFile(*inPath)
		check(err)
		var sig []byte
		if *gpuName == "" {
			sig, err = herosign.Sign(sk, msg)
			check(err)
		} else {
			gpu, err := herosign.GPUByName(*gpuName)
			check(err)
			acc, err := herosign.NewAccelerator(p, gpu)
			check(err)
			res, err := acc.SignBatch(sk, [][]byte{msg})
			check(err)
			sig = res.Sigs[0]
			fmt.Printf("simulated %s: %.2f KOPS modeled batch throughput\n",
				gpu.Name, res.ThroughputKOPS)
		}
		out := *outPath
		if out == "" {
			out = *inPath + ".sig"
		}
		check(writeHex(out, sig, 0o644))
		fmt.Printf("%s: signed %d-byte message, %d-byte signature -> %s\n",
			p.Name, len(msg), len(sig), out)

	case "verify":
		pk, err := herosign.ParsePublicKey(p, readHex(*keyPath))
		check(err)
		msg, err := os.ReadFile(*inPath)
		check(err)
		sig := readHex(*sigPath)
		if err := herosign.Verify(pk, msg, sig); err != nil {
			fmt.Fprintln(os.Stderr, "verification FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("signature OK")

	default:
		usage()
	}
}

func writeHex(path string, b []byte, mode os.FileMode) error {
	return os.WriteFile(path, []byte(hex.EncodeToString(b)+"\n"), mode)
}

func readHex(path string) []byte {
	raw, err := os.ReadFile(path)
	check(err)
	s := string(raw)
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	b, err := hex.DecodeString(s)
	check(err)
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "herosign:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  herosign keygen -set 128f [-out keyfile]
  herosign sign   -set 128f -key keyfile -in message [-out sigfile] [-gpu "RTX 4090"]
  herosign verify -set 128f -key keyfile.pub -in message -sig sigfile`)
	os.Exit(2)
}
