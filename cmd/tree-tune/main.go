// Command tree-tune runs HERO-Sign's offline Auto Tree Tuning search
// (paper Algorithm 1) for a parameter set on a simulated GPU and prints the
// chosen configuration plus the ranked candidate set — the artifact the
// paper's Table IV summarizes.
//
// Usage:
//
//	tree-tune [-set 128f] [-gpu "RTX 4090"] [-alpha 0.6] [-candidates 10]
package main

import (
	"flag"
	"fmt"
	"os"

	"herosign/internal/core/tuner"
	"herosign/internal/gpu/device"
	"herosign/internal/spx/params"
)

func main() {
	set := flag.String("set", "128f", "parameter set")
	gpuName := flag.String("gpu", "RTX 4090", "simulated GPU")
	alpha := flag.Float64("alpha", 0, "thread-utilization floor (0 = default)")
	nCand := flag.Int("candidates", 10, "candidates to print")
	flag.Parse()

	p, err := params.ByName(*set)
	check(err)
	dev, err := device.ByName(*gpuName)
	check(err)

	r, err := tuner.Tune(p, dev, tuner.Options{Alpha: *alpha})
	check(err)

	fmt.Printf("Auto Tree Tuning: %s on %s\n", p.Name, dev)
	fmt.Printf("  FORS geometry: k=%d trees, t=%d leaves, n=%d bytes\n", p.K, p.T, p.N)
	fmt.Printf("  selected: %s\n", r)
	fmt.Printf("  shared memory: %d B per Set, %d B fused (dynamic=%t), %d pass(es)\n",
		r.SharedBytesPerSet, r.SharedBytesTotal, r.DynamicShared, r.Passes)
	fmt.Println()
	fmt.Printf("%-6s %-7s %-3s %-8s %-8s %-6s\n", "T_set", "N_tree", "F", "U_T", "U_S", "sync")
	for i, c := range r.Candidates {
		if i >= *nCand {
			fmt.Printf("... %d more candidates\n", len(r.Candidates)-i)
			break
		}
		fmt.Printf("%-6d %-7d %-3d %-8.4f %-8.4f %-6.1f\n",
			c.ThreadsPerSet, c.TreesPerSet, c.F, c.ThreadUtil, c.SharedUtil, c.SyncScore)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tree-tune:", err)
		os.Exit(1)
	}
}
