// Command herosign-serve runs the HERO-Sign signing service: an HTTP/JSON
// front end over the request coalescer, the shard router and its pluggable
// backend pools.
//
// Usage:
//
//	herosign-serve [-addr :8080] [-params 128f] [-gpus "RTX 4090,RTX 4090"]
//	               [-cpuref 0] [-memo-mb 0] [-memo-warm]
//	               [-shards 1] [-queue-limit 0] [-global-queue-limit 0]
//	               [-shed reject-newest] [-tenant-rate 0] [-tenant-burst 0]
//	               [-drain 10s]
//	               [-max-batch 64] [-deadline 2ms] [-key hexfile]
//	               [-remote "http://leaf1:8080,http://leaf2:8080"] [-hedge-p 95]
//	               [-replica-of http://peer:8080]
//	               [-fleet-secret s|@file] [-fleet-tls-cert f] [-fleet-tls-key f]
//	               [-fleet-tls-ca f] [-fleet-dynamic]
//	               [-join http://front:8080] [-advertise http://me:8081]
//	               [-chaos "mode=latency;path=/v1/sign;latency=50ms"]
//
// The -gpus list creates one simulated-GPU backend per entry; repeating a
// device adds a second worker that shares its cached, tuned signer.
// -cpuref N adds a real-CPU lane-engine backend with N worker goroutines,
// so one service mixes modeled-GPU and real-CPU execution. -memo-mb M
// gives each cpuref backend a per-key hypertree memoization cache of M MiB
// (upper XMSS subtrees pinned, lower ones LRU); with -memo-warm (the
// default) the pinned layers are prebuilt during startup warm-up, so the
// first request already signs from cache. Cache hit/miss/residency
// counters appear under "memo" in /v1/stats. -shards splits
// the fleet into that many key domains (each signing under its own derived
// key; see GET /v1/keys). -queue-limit / -global-queue-limit bound
// admission (0 = unbounded, -1 = auto from backend capacities); overload
// returns 429 with Retry-After, shedding per -shed. -tenant-rate R gives
// each API key (the X-API-Key header; absent = the default tenant) its own
// token bucket of R messages/s with burst -tenant-burst, so one hot tenant
// is rate-limited before it can starve a shard; per-tenant counters appear
// under "tenants" in /v1/stats whether or not rate limiting is on. Clients
// may also send X-Request-Deadline (relative milliseconds, or deadline_ms
// in the body): work that cannot meet its deadline is pre-rejected with
// 429, an expired deadline returns 504, and pending batches flush
// earliest-deadline-first. Without -key a fresh key pair is generated and
// the public key printed on startup.
//
// -remote turns this instance into a fleet-of-fleets front end: each URL
// becomes a proxy backend that forwards batches to another herosign-serve
// over HTTP, with health-probed weights, outlier ejection and (with
// -hedge-p N) hedged retries past the Nth percentile of recent batch
// latencies. Leaves must be started with this front end's -key (and shard
// count) so the derived key domains line up; startup fails otherwise. A
// remote-only front end (-gpus "" -cpuref 0 -remote ...) does no local
// signing at all.
//
// -replica-of asserts this server is interchangeable with a peer: it
// fetches the peer's /v1/keys and refuses to start unless the catalogs
// match, catching replicas launched with the wrong key file before a front
// end hedges requests across them.
//
// -fleet-secret arms fleet authentication: every front↔leaf request (proxy
// calls, health probes, key-domain verification, membership traffic)
// carries an HMAC header with a replay-window nonce; requests without a
// valid header are rejected 401 and counted under auth_rejected in
// /v1/stats. A value starting with @ is read from that file. On a leaf
// (-join, or a standalone server) the secret protects all of /v1/*; on a
// front end /v1/* stays public for clients and only /v1/fleet/* (and the
// front's outgoing requests) use the secret. -fleet-tls-cert/-key serve
// HTTPS and double as the client certificate when dialing leaves;
// -fleet-tls-ca pins the peer CA (on a server it also demands client
// certificates — mutual TLS).
//
// -fleet-dynamic turns the front end into a membership registrar: leaves
// join with POST /v1/fleet/join, heartbeat a lease, and leave with DELETE
// /v1/fleet/leave, appearing in and disappearing from the routing set
// without a restart. A leaf started with -join announces itself to that
// front end (advertising -advertise, default http://127.0.0.1<addr>) and
// sends its leave on SIGTERM before the drain begins. Membership and
// health transitions surface as fleet_events in the front's /v1/stats.
//
// -chaos arms development fault injection on this server's own handler
// (latency, resets, error bursts — see internal/faultinject for the rule
// grammar). Never set it in production.
//
// On SIGINT or SIGTERM the server stops accepting requests and drains
// in-flight batches up to the -drain deadline before exiting.
//
// Endpoints: POST /v1/sign, /v1/sign/batch, /v1/verify, /v1/verify/batch,
// /v1/keygen and GET /v1/keys, /v1/stats.
package main

import (
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"herosign"
	"herosign/internal/faultinject"
	"herosign/service"
	"herosign/service/remote"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	paramsName := flag.String("params", "128f", "SPHINCS+ parameter set")
	gpus := flag.String("gpus", "RTX 4090", "comma-separated simulated devices, one backend each (empty for none)")
	cpuref := flag.Int("cpuref", 0, "real-CPU lane-engine backend with N goroutines (0 = none, -1 = GOMAXPROCS)")
	memoMB := flag.Int("memo-mb", 0, "per-key hypertree memoization cache budget in MiB for cpuref backends (0 = off)")
	memoWarm := flag.Bool("memo-warm", true, "prebuild the memo cache's pinned layers during startup warm-up")
	shards := flag.Int("shards", 1, "key domains; backends distribute round-robin")
	queueLimit := flag.Int("queue-limit", 0, "per-shard admission cap (0 = unbounded, -1 = auto)")
	globalLimit := flag.Int("global-queue-limit", 0, "service-wide admission cap (0 = unbounded, -1 = auto)")
	shed := flag.String("shed", "reject-newest", "overload policy: reject-newest or drop-oldest-deadline")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate in messages/s, keyed by X-API-Key (0 = no per-tenant rate limiting)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = one second of -tenant-rate, floored at 8)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain deadline (0 = wait for a full drain)")
	maxBatch := flag.Int("max-batch", 0, "size-triggered flush threshold (0 = engine SubBatch)")
	deadline := flag.Duration("deadline", 2*time.Millisecond, "coalescing flush deadline")
	keyFile := flag.String("key", "", "hex-encoded private key file (default: generate)")
	remotes := flag.String("remote", "", "comma-separated leaf herosign-serve URLs to proxy as backends")
	hedgeP := flag.Int("hedge-p", 0, "hedge remote batches past this percentile of recent latencies (0 = no hedging)")
	replicaOf := flag.String("replica-of", "", "peer URL whose /v1/keys catalog this server must match")
	fleetSecret := flag.String("fleet-secret", "", "shared fleet-auth secret (@file reads it from a file)")
	fleetTLSCert := flag.String("fleet-tls-cert", "", "TLS certificate file: served by this server, presented as client cert to leaves")
	fleetTLSKey := flag.String("fleet-tls-key", "", "TLS key file for -fleet-tls-cert")
	fleetTLSCA := flag.String("fleet-tls-ca", "", "CA file pinning fleet peers (server side: require client certs)")
	fleetDynamic := flag.Bool("fleet-dynamic", false, "accept dynamic fleet membership: leaves join/leave via /v1/fleet/*")
	joinURL := flag.String("join", "", "front-end URL to join as a dynamic-membership leaf")
	advertise := flag.String("advertise", "", "advertised base URL for -join (default http://127.0.0.1<addr>)")
	chaos := flag.String("chaos", "", "development fault-injection rules for this server's handler (see internal/faultinject)")
	flag.Parse()

	p, err := herosign.ParamsByName(*paramsName)
	if err != nil {
		fatal(err)
	}
	if *gpus == "" && *cpuref == 0 && *remotes == "" && !*fleetDynamic {
		fatal(fmt.Errorf("no backends configured: set -gpus, -cpuref, -remote and/or -fleet-dynamic"))
	}
	policy, err := service.ShedPolicyByName(*shed)
	if err != nil {
		fatal(err)
	}
	secret, err := loadFleetSecret(*fleetSecret)
	if err != nil {
		fatal(err)
	}
	tlsCfg, err := fleetClientTLS(*fleetTLSCert, *fleetTLSKey, *fleetTLSCA)
	if err != nil {
		fatal(err)
	}
	// Auth posture: a leaf (it joins a fleet, or serves standalone with a
	// secret) authenticates all of /v1/*; a front end keeps /v1/* public
	// for clients — only /v1/fleet/* and its outgoing requests are authed.
	isFront := *fleetDynamic || *remotes != ""

	opts := []herosign.ServiceOption{
		herosign.WithServiceParams(p),
		herosign.WithServiceFlushDeadline(*deadline),
		herosign.WithShards(*shards),
		herosign.WithQueueLimit(*queueLimit),
		herosign.WithGlobalQueueLimit(*globalLimit),
		herosign.WithShedPolicy(policy),
		herosign.WithDrainDeadline(*drain),
	}
	if *tenantRate > 0 {
		opts = append(opts, herosign.WithTenantRate(*tenantRate))
		if *tenantBurst > 0 {
			opts = append(opts, herosign.WithTenantBurst(*tenantBurst))
		}
	}
	if *maxBatch > 0 {
		opts = append(opts, herosign.WithServiceMaxBatch(*maxBatch))
	}
	if secret != "" && (*joinURL != "" || !isFront) {
		opts = append(opts, service.WithFleetSecret(secret))
	}
	if *fleetDynamic {
		opts = append(opts, service.WithDynamicMembership())
	}

	var devs []*herosign.GPU
	if *gpus != "" {
		for _, name := range strings.Split(*gpus, ",") {
			d, err := herosign.GPUByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			devs = append(devs, d)
		}
		opts = append(opts, herosign.WithServiceDevices(devs...))
	}
	if *cpuref != 0 {
		if *memoMB > 0 {
			opts = append(opts, herosign.WithBackend(
				herosign.NewCPURefBackendMemo(*cpuref, int64(*memoMB)<<20, *memoWarm)))
		} else {
			opts = append(opts, herosign.WithBackend(herosign.NewCPURefBackend(*cpuref)))
		}
	}
	fleetOpts := remote.Options{
		HedgePercentile: *hedgeP,
		Secret:          secret,
		TLSConfig:       tlsCfg,
	}
	if *remotes != "" {
		if *keyFile == "" {
			fatal(fmt.Errorf("-remote requires -key: the leaves must be started with the same key file so the derived key domains line up"))
		}
		fleet, err := remote.NewFleet(strings.Split(*remotes, ","), fleetOpts)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, herosign.WithBackend(fleet.Backends()...))
	}
	var dynFleet *remote.Fleet
	if *fleetDynamic {
		if *keyFile == "" {
			fatal(fmt.Errorf("-fleet-dynamic requires -key: joining leaves must be started with the same key file so the derived key domains line up"))
		}
		dynFleet, err = remote.NewDynamicFleet(fleetOpts)
		if err != nil {
			fatal(err)
		}
	}

	if *keyFile != "" {
		raw, err := os.ReadFile(*keyFile)
		if err != nil {
			fatal(err)
		}
		b, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			fatal(fmt.Errorf("decode %s: %w", *keyFile, err))
		}
		sk, err := herosign.ParsePrivateKey(p, b)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, herosign.WithServiceKey(sk))
	}

	svc, err := herosign.NewService(opts...)
	if err != nil {
		fatal(err)
	}

	if *replicaOf != "" {
		if err := checkReplicaOf(*replicaOf, svc); err != nil {
			fatal(err)
		}
		fmt.Printf("replica check: key catalog matches %s\n", *replicaOf)
	}

	fmt.Printf("herosign-serve: params=%s addr=%s shards=%d shed=%s queue-limit=%d/%d tenant-rate=%g\n",
		p.Name, *addr, *shards, policy, *queueLimit, *globalLimit, *tenantRate)
	for _, sh := range svc.Shards() {
		fmt.Printf("shard %d key=%s backends=%s pk=%s\n",
			sh.ID, sh.KeyID, strings.Join(sh.Backends, ","),
			base64.StdEncoding.EncodeToString(sh.PublicKey.Bytes()))
	}

	var handler http.Handler = svc.Handler()
	var registrar *remote.Registrar
	if dynFleet != nil {
		registrar = remote.NewRegistrar(svc, dynFleet, remote.RegistrarOptions{})
		mux := http.NewServeMux()
		mux.Handle("/v1/fleet/", registrar.Handler())
		mux.Handle("/", handler)
		handler = mux
		fmt.Println("fleet membership: dynamic (join via POST /v1/fleet/join)")
	}
	if *chaos != "" {
		rules, err := faultinject.ParseRules(*chaos)
		if err != nil {
			fatal(err)
		}
		inj := faultinject.New()
		for _, r := range rules {
			inj.Arm(r)
		}
		handler = inj.Middleware(handler)
		fmt.Printf("chaos: %d fault rule(s) armed — do not run this in production\n", len(rules))
	}

	var announcer *remote.Announcer
	if *joinURL != "" {
		adv := *advertise
		if adv == "" {
			if !strings.HasPrefix(*addr, ":") {
				fatal(fmt.Errorf("-join needs -advertise when -addr is not a bare :port"))
			}
			adv = "http://127.0.0.1" + *addr
		}
		client := &http.Client{}
		if tlsCfg != nil {
			client.Transport = &http.Transport{TLSClientConfig: tlsCfg}
		}
		announcer, err = remote.NewAnnouncer(remote.AnnouncerOptions{
			FrontURL: *joinURL,
			SelfURL:  adv,
			Secret:   secret,
			Client:   client,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	if *fleetTLSCA != "" && *fleetTLSCert != "" {
		pool, err := fleetCAPool(*fleetTLSCA)
		if err != nil {
			fatal(err)
		}
		srv.TLSConfig = &tls.Config{ClientCAs: pool, ClientAuth: tls.RequireAndVerifyClientCert}
	}
	go func() {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		<-ctx.Done()
		// Leave the fleet BEFORE draining: the front end stops routing new
		// work to this leaf first, so the drain deadline is spent finishing
		// accepted batches instead of racing fresh arrivals.
		if announcer != nil {
			leaveCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := announcer.Leave(leaveCtx); err != nil {
				fmt.Println("fleet leave:", err)
			} else {
				fmt.Println("left fleet; draining")
			}
			cancel()
		}
		fmt.Println("shutting down: draining coalescers and backend pools")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	if announcer != nil {
		announcer.Start()
	}
	serveErr := error(nil)
	if *fleetTLSCert != "" && *fleetTLSKey != "" {
		serveErr = srv.ListenAndServeTLS(*fleetTLSCert, *fleetTLSKey)
	} else {
		serveErr = srv.ListenAndServe()
	}
	if serveErr != nil && serveErr != http.ErrServerClosed {
		fatal(serveErr)
	}
	_ = svc.Close()
	if registrar != nil {
		_ = registrar.Close()
	}
	fmt.Println("drained; bye")
}

// loadFleetSecret resolves -fleet-secret: empty, a literal, or @file.
func loadFleetSecret(v string) (string, error) {
	if !strings.HasPrefix(v, "@") {
		return v, nil
	}
	raw, err := os.ReadFile(strings.TrimPrefix(v, "@"))
	if err != nil {
		return "", fmt.Errorf("read fleet secret: %w", err)
	}
	s := strings.TrimSpace(string(raw))
	if s == "" {
		return "", fmt.Errorf("fleet secret file %s is empty", strings.TrimPrefix(v, "@"))
	}
	return s, nil
}

// fleetClientTLS builds the dial-side TLS config: the CA pins fleet peers
// and the cert/key pair doubles as this server's client certificate.
func fleetClientTLS(cert, key, ca string) (*tls.Config, error) {
	if cert == "" && key == "" && ca == "" {
		return nil, nil
	}
	cfg := &tls.Config{}
	if ca != "" {
		pool, err := fleetCAPool(ca)
		if err != nil {
			return nil, err
		}
		cfg.RootCAs = pool
	}
	if cert != "" && key != "" {
		pair, err := tls.LoadX509KeyPair(cert, key)
		if err != nil {
			return nil, fmt.Errorf("load fleet TLS keypair: %w", err)
		}
		cfg.Certificates = []tls.Certificate{pair}
	}
	return cfg, nil
}

func fleetCAPool(path string) (*x509.CertPool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read fleet CA: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(raw) {
		return nil, fmt.Errorf("fleet CA %s contains no certificates", path)
	}
	return pool, nil
}

// checkReplicaOf compares this server's key catalog to a peer's: same
// parameter set, and every local shard key present in the peer with a
// byte-identical public key. Two servers passing the check against each
// other are safe hedge/failover targets for the same key domains.
func checkReplicaOf(peer string, svc *herosign.Service) error {
	peer = strings.TrimRight(strings.TrimSpace(peer), "/")
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(peer + "/v1/keys")
	if err != nil {
		return fmt.Errorf("replica check: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica check: %s/v1/keys returned %d", peer, resp.StatusCode)
	}
	var catalog struct {
		Params string `json:"params"`
		Keys   []struct {
			KeyID     string `json:"key_id"`
			PublicKey []byte `json:"public_key"`
		} `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&catalog); err != nil {
		return fmt.Errorf("replica check: decode %s/v1/keys: %w", peer, err)
	}
	byID := make(map[string][]byte, len(catalog.Keys))
	for _, k := range catalog.Keys {
		byID[k.KeyID] = k.PublicKey
	}
	for _, sh := range svc.Shards() {
		if sh.PublicKey.Params.Name != catalog.Params {
			return fmt.Errorf("replica check: peer %s serves %s, this server %s",
				peer, catalog.Params, sh.PublicKey.Params.Name)
		}
		pub, ok := byID[sh.KeyID]
		if !ok {
			return fmt.Errorf("replica check: peer %s does not serve key domain %s — were both started from the same -key file and -shards count?",
				peer, sh.KeyID)
		}
		if !bytes.Equal(pub, sh.PublicKey.Bytes()) {
			return fmt.Errorf("replica check: peer %s key %s has a different public key", peer, sh.KeyID)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "herosign-serve:", err)
	os.Exit(1)
}
