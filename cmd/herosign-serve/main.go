// Command herosign-serve runs the HERO-Sign signing service: an HTTP/JSON
// front end over the request coalescer, the shard router and its pluggable
// backend pools.
//
// Usage:
//
//	herosign-serve [-addr :8080] [-params 128f] [-gpus "RTX 4090,RTX 4090"]
//	               [-cpuref 0] [-shards 1] [-queue-limit 0] [-global-queue-limit 0]
//	               [-shed reject-newest] [-drain 10s]
//	               [-max-batch 64] [-deadline 2ms] [-key hexfile]
//
// The -gpus list creates one simulated-GPU backend per entry; repeating a
// device adds a second worker that shares its cached, tuned signer.
// -cpuref N adds a real-CPU lane-engine backend with N worker goroutines,
// so one service mixes modeled-GPU and real-CPU execution. -shards splits
// the fleet into that many key domains (each signing under its own derived
// key; see GET /v1/keys). -queue-limit / -global-queue-limit bound
// admission (0 = unbounded, -1 = auto from backend capacities); overload
// returns 429 with Retry-After, shedding per -shed. Without -key a fresh
// key pair is generated and the public key printed on startup.
//
// Endpoints: POST /v1/sign, /v1/sign/batch, /v1/verify, /v1/keygen and
// GET /v1/keys, /v1/stats.
package main

import (
	"context"
	"encoding/base64"
	"encoding/hex"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"herosign"
	"herosign/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	paramsName := flag.String("params", "128f", "SPHINCS+ parameter set")
	gpus := flag.String("gpus", "RTX 4090", "comma-separated simulated devices, one backend each (empty for none)")
	cpuref := flag.Int("cpuref", 0, "real-CPU lane-engine backend with N goroutines (0 = none, -1 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "key domains; backends distribute round-robin")
	queueLimit := flag.Int("queue-limit", 0, "per-shard admission cap (0 = unbounded, -1 = auto)")
	globalLimit := flag.Int("global-queue-limit", 0, "service-wide admission cap (0 = unbounded, -1 = auto)")
	shed := flag.String("shed", "reject-newest", "overload policy: reject-newest or drop-oldest-deadline")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain deadline (0 = wait for a full drain)")
	maxBatch := flag.Int("max-batch", 0, "size-triggered flush threshold (0 = engine SubBatch)")
	deadline := flag.Duration("deadline", 2*time.Millisecond, "coalescing flush deadline")
	keyFile := flag.String("key", "", "hex-encoded private key file (default: generate)")
	flag.Parse()

	p, err := herosign.ParamsByName(*paramsName)
	if err != nil {
		fatal(err)
	}
	if *gpus == "" && *cpuref == 0 {
		fatal(fmt.Errorf("no backends configured: set -gpus and/or -cpuref"))
	}
	policy, err := service.ShedPolicyByName(*shed)
	if err != nil {
		fatal(err)
	}

	opts := []herosign.ServiceOption{
		herosign.WithServiceParams(p),
		herosign.WithServiceFlushDeadline(*deadline),
		herosign.WithShards(*shards),
		herosign.WithQueueLimit(*queueLimit),
		herosign.WithGlobalQueueLimit(*globalLimit),
		herosign.WithShedPolicy(policy),
		herosign.WithDrainDeadline(*drain),
	}
	if *maxBatch > 0 {
		opts = append(opts, herosign.WithServiceMaxBatch(*maxBatch))
	}

	var devs []*herosign.GPU
	if *gpus != "" {
		for _, name := range strings.Split(*gpus, ",") {
			d, err := herosign.GPUByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			devs = append(devs, d)
		}
		opts = append(opts, herosign.WithServiceDevices(devs...))
	}
	if *cpuref != 0 {
		opts = append(opts, herosign.WithBackend(herosign.NewCPURefBackend(*cpuref)))
	}

	if *keyFile != "" {
		raw, err := os.ReadFile(*keyFile)
		if err != nil {
			fatal(err)
		}
		b, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			fatal(fmt.Errorf("decode %s: %w", *keyFile, err))
		}
		sk, err := herosign.ParsePrivateKey(p, b)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, herosign.WithServiceKey(sk))
	}

	svc, err := herosign.NewService(opts...)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("herosign-serve: params=%s addr=%s shards=%d shed=%s queue-limit=%d/%d\n",
		p.Name, *addr, *shards, policy, *queueLimit, *globalLimit)
	for _, sh := range svc.Shards() {
		fmt.Printf("shard %d key=%s backends=%s pk=%s\n",
			sh.ID, sh.KeyID, strings.Join(sh.Backends, ","),
			base64.StdEncoding.EncodeToString(sh.PublicKey.Bytes()))
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	go func() {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		<-ctx.Done()
		fmt.Println("shutting down: draining coalescers and backend pools")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	_ = svc.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "herosign-serve:", err)
	os.Exit(1)
}
