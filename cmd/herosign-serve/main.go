// Command herosign-serve runs the HERO-Sign signing service: an HTTP/JSON
// front end over the request coalescer and the multi-device fleet
// scheduler.
//
// Usage:
//
//	herosign-serve [-addr :8080] [-params 128f] [-gpus "RTX 4090,RTX 4090"]
//	               [-max-batch 64] [-deadline 2ms] [-key hexfile]
//
// The -gpus list creates one worker per entry; repeating a device adds a
// second worker that shares its cached, tuned signer. Without -key a fresh
// key pair is generated and the public key printed on startup.
//
// Endpoints: POST /v1/sign, POST /v1/verify, POST /v1/keygen, GET /v1/stats.
package main

import (
	"context"
	"encoding/base64"
	"encoding/hex"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"herosign"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	paramsName := flag.String("params", "128f", "SPHINCS+ parameter set")
	gpus := flag.String("gpus", "RTX 4090", "comma-separated simulated devices, one worker each")
	maxBatch := flag.Int("max-batch", 0, "size-triggered flush threshold (0 = engine SubBatch)")
	deadline := flag.Duration("deadline", 2*time.Millisecond, "coalescing flush deadline")
	keyFile := flag.String("key", "", "hex-encoded private key file (default: generate)")
	flag.Parse()

	p, err := herosign.ParamsByName(*paramsName)
	if err != nil {
		fatal(err)
	}

	opts := []herosign.ServiceOption{
		herosign.WithServiceParams(p),
		herosign.WithServiceFlushDeadline(*deadline),
	}
	if *maxBatch > 0 {
		opts = append(opts, herosign.WithServiceMaxBatch(*maxBatch))
	}

	var devs []*herosign.GPU
	for _, name := range strings.Split(*gpus, ",") {
		d, err := herosign.GPUByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		devs = append(devs, d)
	}
	opts = append(opts, herosign.WithServiceDevices(devs...))

	if *keyFile != "" {
		raw, err := os.ReadFile(*keyFile)
		if err != nil {
			fatal(err)
		}
		b, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			fatal(fmt.Errorf("decode %s: %w", *keyFile, err))
		}
		sk, err := herosign.ParsePrivateKey(p, b)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, herosign.WithServiceKey(sk))
	}

	svc, err := herosign.NewService(opts...)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("herosign-serve: params=%s devices=%s addr=%s\n", p.Name, *gpus, *addr)
	fmt.Printf("public key (base64): %s\n",
		base64.StdEncoding.EncodeToString(svc.PublicKey().Bytes()))

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	go func() {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		<-ctx.Done()
		fmt.Println("shutting down: draining coalescers and fleet")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	_ = svc.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "herosign-serve:", err)
	os.Exit(1)
}
