// Command herosign-bench regenerates the HERO-Sign evaluation: every table
// and figure of the paper's §IV, modeled on the simulated GPU catalog.
//
// Usage:
//
//	herosign-bench [-gpu "RTX 4090"] [-batch 1024] [-sample 2] [-exp all|id,id,...]
//	herosign-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"herosign/internal/bench"
	"herosign/internal/gpu/device"
)

func main() {
	gpuName := flag.String("gpu", "RTX 4090", "simulated GPU (name or architecture)")
	batch := flag.Int("batch", 1024, "batch size (paper Block = 1024)")
	sample := flag.Int("sample", 2, "functionally executed blocks per launch (counters scale)")
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	format := flag.String("format", "text", "output format: text or csv")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	dev, err := device.ByName(*gpuName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	suite := bench.NewSuite(dev)
	suite.Batch = *batch
	suite.Sample = *sample

	var ids []string
	if *exp == "all" {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	if *format == "text" {
		fmt.Printf("herosign-bench: device=%s batch=%d sample=%d\n\n", dev, *batch, *sample)
	}
	for _, id := range ids {
		start := time.Now()
		t, err := suite.RunByID(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			t.RenderCSV(os.Stdout)
		default:
			t.Render(os.Stdout)
			fmt.Printf("(%s generated in %v)\n\n", t.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
