// Command herosign-bench regenerates the HERO-Sign evaluation: every table
// and figure of the paper's §IV, modeled on the simulated GPU catalog.
//
// Usage:
//
//	herosign-bench [-gpu "RTX 4090"] [-batch 1024] [-sample 2] [-exp all|id,id,...]
//	herosign-bench -json > BENCH_latest.json
//	herosign-bench -list
//
// With -json the run is emitted as one machine-readable document (device,
// batch, sample, per-experiment tables and wall times) so successive PRs
// can diff the perf trajectory in BENCH_*.json files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"herosign/internal/bench"
	"herosign/internal/gpu/device"
)

// jsonReport is the -json output document.
type jsonReport struct {
	Device      string            `json:"device"`
	Batch       int               `json:"batch"`
	Sample      int               `json:"sample"`
	GeneratedAt string            `json:"generated_at"`
	Experiments []*jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	WallMS int64      `json:"wall_ms"`
}

func main() {
	gpuName := flag.String("gpu", "RTX 4090", "simulated GPU (name or architecture)")
	batch := flag.Int("batch", 1024, "batch size (paper Block = 1024)")
	sample := flag.Int("sample", 2, "functionally executed blocks per launch (counters scale)")
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	format := flag.String("format", "text", "output format: text, csv or json")
	jsonOut := flag.Bool("json", false, "shorthand for -format json")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	dev, err := device.ByName(*gpuName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	suite := bench.NewSuite(dev)
	suite.Batch = *batch
	suite.Sample = *sample

	var ids []string
	if *exp == "all" {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	// -json is shorthand for -format json (and wins over an explicit
	// conflicting -format, which would otherwise interleave two syntaxes
	// on stdout).
	if *jsonOut {
		*format = "json"
	}

	var report *jsonReport
	if *format == "json" {
		report = &jsonReport{
			Device: dev.Name, Batch: *batch, Sample: *sample,
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		}
	}
	if *format == "text" {
		fmt.Printf("herosign-bench: device=%s batch=%d sample=%d\n\n", dev, *batch, *sample)
	}
	for _, id := range ids {
		start := time.Now()
		t, err := suite.RunByID(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		switch *format {
		case "json":
			report.Experiments = append(report.Experiments, &jsonExperiment{
				ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes,
				WallMS: time.Since(start).Milliseconds(),
			})
		case "csv":
			t.RenderCSV(os.Stdout)
		default:
			t.Render(os.Stdout)
			fmt.Printf("(%s generated in %v)\n\n", t.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if report != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
